#!/usr/bin/env python3
"""Compare a bench_kernels JSON run against the committed baseline.

Guards the perf trajectory in CI:

  * refuses to accept a current JSON produced by a **debug** build —
    debug numbers are meaningless and silently poison the comparison;
  * fails (exit 1) when any kernel present in both files regressed by
    more than --threshold (default 25%) in real_time;
  * fails when a kernel that reports a `recall` counter (the approximate
    kNN builds) lost more than --recall-threshold (default 0.02) of
    recall against the baseline — a speedup bought with accuracy is a
    regression, not a win;
  * benchmarks missing from either side are reported but never fatal,
    so adding or retiring kernels does not break CI.

Usage:
  python3 tools/bench_compare.py \
      [--current build/BENCH_kernels.json] \
      [--baseline BENCH_kernels.baseline.json] \
      [--threshold 0.25] [--recall-threshold 0.02] [--allow-debug]

Regenerating the baseline (Release build only; pin the kernel table so
the committed context matches what CI dispatches):
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
  (cd build && ./bench_kernels --force_isa=avx2 --benchmark_min_time=0.1)
  cp build/BENCH_kernels.json BENCH_kernels.baseline.json

Cross-machine caveat: real_time is only comparable on similar hardware.
The committed baseline tracks the reference dev machine; on very
different hosts, regenerate the baseline locally before trusting the
comparison (or raise --threshold).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns (context, {name: real_time}, {name: recall}) for a
    google-benchmark JSON; recall only holds kernels that report the
    counter."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    times = {}
    recalls = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or "real_time" not in bench:
            continue
        times[name] = float(bench["real_time"])
        if "recall" in bench:
            recalls[name] = float(bench["recall"])
    return doc.get("context", {}), times, recalls


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="build/BENCH_kernels.json",
                        help="JSON produced by the run under test")
    parser.add_argument("--baseline", default="BENCH_kernels.baseline.json",
                        help="committed reference JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional real_time regression that fails "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--recall-threshold", type=float, default=0.02,
                        help="absolute recall-counter drop that fails "
                             "(default 0.02)")
    parser.add_argument("--allow-debug", action="store_true",
                        help="accept a debug-build current JSON (local "
                             "debugging only; CI must not pass this)")
    parser.add_argument("--allow-isa-mismatch", action="store_true",
                        help="compare runs even when current and baseline "
                             "dispatched different kernel tables (scalar vs "
                             "avx2 vs avx512 vs neon); the numbers will "
                             "include the ISA gap")
    parser.add_argument("--require-isa-match", action="store_true",
                        help="treat a kernel-table mismatch as a hard "
                             "failure (exit 1) instead of skipping the "
                             "comparison; for legs that pin RHCHME_FORCE_ISA "
                             "and must never silently no-op")
    args = parser.parse_args()

    try:
        cur_ctx, current, cur_recall = load_benchmarks(args.current)
    except (OSError, ValueError) as e:
        print(f"error: cannot read --current {args.current}: {e}")
        return 1
    try:
        base_ctx, baseline, base_recall = load_benchmarks(args.baseline)
    except (OSError, ValueError) as e:
        print(f"error: cannot read --baseline {args.baseline}: {e}")
        return 1

    # rhchme_build_type (emitted by bench_kernels' main) records whether the
    # *benchmark binary* was optimised and is authoritative when present;
    # the stock library_build_type only reflects how the system libbenchmark
    # was compiled (Debian/Ubuntu ship it assertion-enabled = "debug" even
    # under a Release user build), so it is only consulted for old JSONs
    # that predate the custom key.
    if "rhchme_build_type" in cur_ctx:
        build_key = "rhchme_build_type"
    else:
        build_key = "library_build_type"
    build_type = str(cur_ctx.get(build_key, "unknown")).lower()
    if build_type == "debug" and not args.allow_debug:
        print(f"error: {args.current} was produced by a debug build "
              f"(context.{build_key} = {build_type!r}); perf numbers "
              "from unoptimised binaries are meaningless. Re-run "
              "bench_kernels from a Release build (or pass --allow-debug "
              "for local experiments).")
        return 1

    # The kernel table is dispatched at runtime, so the binary is the same
    # everywhere — but a run that resolved 'scalar' compared against the
    # 'avx2' baseline would report the ISA gap itself as a 4-5x
    # "regression". context.rhchme_simd records the table the run actually
    # dispatched; on mismatch the comparison is skipped (exit 0) so a
    # host without the baseline ISA never fails CI spuriously. Legs that
    # pin the table (RHCHME_FORCE_ISA / --force_isa) should pass
    # --require-isa-match so the skip can never mask a misconfigured leg.
    cur_isa = cur_ctx.get("rhchme_simd")
    base_isa = base_ctx.get("rhchme_simd")
    if (cur_isa is not None and base_isa is not None and cur_isa != base_isa
            and not args.allow_isa_mismatch):
        if args.require_isa_match:
            print(f"error: kernel-table mismatch: current dispatched "
                  f"{cur_isa!r} but the baseline was recorded with "
                  f"{base_isa!r}, and --require-isa-match is set. Pin the "
                  f"table with RHCHME_FORCE_ISA={base_isa} (or "
                  f"--force_isa={base_isa}) when producing the current "
                  "run, or regenerate the baseline.")
            return 1
        print(f"SKIP: current run dispatched kernel table {cur_isa!r} but "
              f"the baseline was recorded with {base_isa!r}; comparing "
              "them would measure the ISA gap, not a regression. To "
              f"reproduce the baseline's table run bench_kernels with "
              f"RHCHME_FORCE_ISA={base_isa} (or --force_isa={base_isa}); "
              "to compare across tables anyway pass --allow-isa-mismatch.")
        return 0

    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))

    if not shared:
        print("error: no benchmark names shared between current and "
              "baseline; nothing to compare.")
        return 1

    regressions = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name in shared:
        base, cur = baseline[name], current[name]
        delta = (cur - base) / base if base > 0 else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{width}}  {base:>12.1f}  {cur:>12.1f}  "
              f"{delta:>+7.1%}{flag}")

    # Recall gate: recall is deterministic for a fixed seed (unlike
    # real_time), so any drop beyond the threshold is a real algorithmic
    # change, not machine noise.
    recall_regressions = []
    for name in sorted(set(cur_recall) & set(base_recall)):
        drop = base_recall[name] - cur_recall[name]
        flag = ""
        if drop > args.recall_threshold:
            flag = "  << RECALL REGRESSION"
            recall_regressions.append((name, drop))
        print(f"{name}: recall {base_recall[name]:.4f} -> "
              f"{cur_recall[name]:.4f}{flag}")

    for name in only_current:
        print(f"note: {name} has no baseline entry (new kernel?)")
    for name in only_baseline:
        print(f"note: {name} missing from current run (filtered out?)")

    failed = False
    if regressions:
        failed = True
        print(f"\nFAIL: {len(regressions)} kernel(s) regressed more than "
              f"{args.threshold:.0%} in real_time:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}")
    if recall_regressions:
        failed = True
        print(f"\nFAIL: {len(recall_regressions)} kernel(s) lost more than "
              f"{args.recall_threshold} recall:")
        for name, drop in recall_regressions:
            print(f"  {name}: -{drop:.4f}")
    if failed:
        return 1

    print(f"\nOK: {len(shared)} kernels within {args.threshold:.0%} of "
          f"baseline ({len(set(cur_recall) & set(base_recall))} recall "
          "counters checked).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
