#!/usr/bin/env python3
"""Fixture self-test for the invariant lint suite (ctest: lint_selftest).

Contract, by filename convention under tools/lint/fixtures/<check>/:

  flag_*.cc   must yield at least one violation OF THAT CHECK
  pass_*.cc   must yield zero violations of that check (and zero
              violations overall — fixtures are minimal on purpose)

The special fixtures/annotations/ corpus pins the annotation grammar:
empty reasons are violations, stale and unknown annotations warn.

Runs the token engine only: it is the always-available contract CI
gates on; the clang engine is a best-effort refinement on top.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lintlib import checks, engine  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "fixtures")
ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def lint(path):
    return engine.lint_file(path, ROOT, checks.ALL_CHECKS, clang_index=None)


def main():
    failures = []
    checked = 0

    check_names = {c.NAME for c in checks.ALL_CHECKS}
    for check_dir in sorted(os.listdir(FIXTURES)):
        if check_dir == "annotations":
            continue
        if check_dir not in check_names:
            failures.append(f"fixtures/{check_dir}/ does not match any "
                            f"check name ({', '.join(sorted(check_names))})")
            continue
        dirpath = os.path.join(FIXTURES, check_dir)
        for name in sorted(os.listdir(dirpath)):
            if not name.endswith(engine.SOURCE_EXTENSIONS):
                continue
            path = os.path.join(dirpath, name)
            violations, _warnings = lint(path)
            of_check = [v for v in violations if v.check == check_dir]
            checked += 1
            if name.startswith("flag_"):
                if not of_check:
                    failures.append(
                        f"{check_dir}/{name}: expected >=1 [{check_dir}] "
                        f"violation, got none (all violations: "
                        f"{[v.format() for v in violations]})")
            elif name.startswith("pass_"):
                if violations:
                    failures.append(
                        f"{check_dir}/{name}: expected clean, got: "
                        f"{[v.format() for v in violations]}")
            else:
                failures.append(f"{check_dir}/{name}: fixture names must "
                                "start with flag_ or pass_")

    # ---- Annotation grammar pins ------------------------------------------

    ann = os.path.join(FIXTURES, "annotations")

    violations, warnings = lint(os.path.join(ann, "empty_reason.cc"))
    checked += 1
    if not any("non-empty reason" in v.message for v in violations):
        failures.append("annotations/empty_reason.cc: empty annotation "
                        "reason must be a violation; got "
                        f"{[v.format() for v in violations]}")

    violations, warnings = lint(os.path.join(ann, "stale.cc"))
    checked += 1
    if violations:
        failures.append("annotations/stale.cc: stale annotations must not "
                        f"be violations; got {[v.format() for v in violations]}")
    if not any("stale annotation" in w for w in warnings):
        failures.append("annotations/stale.cc: expected a stale-annotation "
                        f"warning; got {warnings}")

    violations, warnings = lint(os.path.join(ann, "unknown_check.cc"))
    checked += 1
    if violations:
        failures.append("annotations/unknown_check.cc: unknown annotations "
                        "must warn, not fail; got "
                        f"{[v.format() for v in violations]}")
    if not any("unknown lint annotation" in w for w in warnings):
        failures.append("annotations/unknown_check.cc: expected an "
                        f"unknown-annotation warning; got {warnings}")

    if failures:
        print(f"lint_selftest: {len(failures)} failure(s) over {checked} "
              "fixture(s):")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"lint_selftest: OK ({checked} fixtures, "
          f"{len(check_names)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
