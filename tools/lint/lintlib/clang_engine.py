"""Optional libclang refinement for receiver typing.

When the `clang` Python bindings (and a matching libclang shared
library) are importable, the stride check can resolve real receiver
types instead of the file-scoped token heuristic: every member call
named `data` whose receiver type spells la::Matrix is collected per
file. CI and the container image need no extra dependency — absence of
libclang silently falls back to the tokenizer, which is the behavioural
contract covered by the fixture self-test.

build_index() returns {relpath: [line, ...]} or None when libclang is
unavailable or parsing fails; callers treat None as "use the token
heuristic".
"""

import json
import os
import shlex


def _load_cindex():
    try:
        from clang import cindex  # noqa: PLC0415 — optional dependency.
        # Fail fast if the shared library is missing, before any parse.
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def _compile_args(compile_commands, path):
    """Compiler args for `path` from a compile_commands.json list, with
    the bits libclang chokes on (output/input/-c) removed."""
    for entry in compile_commands:
        if os.path.realpath(entry.get("file", "")) == os.path.realpath(path):
            if "arguments" in entry:
                args = list(entry["arguments"])
            else:
                args = shlex.split(entry.get("command", ""))
            cleaned = []
            skip = False
            for a in args[1:]:
                if skip:
                    skip = False
                    continue
                if a == "-c" or os.path.realpath(a) == os.path.realpath(path):
                    continue
                if a == "-o":
                    skip = True
                    continue
                cleaned.append(a)
            return cleaned
    return None


def build_index(root, paths, compile_commands_path=None):
    cindex = _load_cindex()
    if cindex is None:
        return None

    commands = []
    cc_path = compile_commands_path or os.path.join(root, "build",
                                                    "compile_commands.json")
    if os.path.exists(cc_path):
        try:
            with open(cc_path, "r", encoding="utf-8") as f:
                commands = json.load(f)
        except (OSError, ValueError):
            commands = []

    index = cindex.Index.create()
    fallback_args = ["-std=c++17", "-I" + os.path.join(root, "src")]
    out = {}
    for path in paths:
        args = _compile_args(commands, path) or fallback_args
        try:
            tu = index.parse(path, args=args)
        except Exception:
            return None  # Broken setup: fall back entirely, not per-file.
        lines = []
        for cursor in tu.cursor.walk_preorder():
            try:
                if (cursor.kind == cindex.CursorKind.CALL_EXPR
                        and cursor.spelling == "data"):
                    ref = cursor.referenced
                    parent_type = (ref.semantic_parent.type.spelling
                                   if ref and ref.semantic_parent else "")
                    if "la::Matrix" in parent_type or \
                            parent_type.endswith("::Matrix"):
                        if (cursor.location.file
                                and os.path.realpath(
                                    cursor.location.file.name)
                                == os.path.realpath(path)):
                            lines.append(cursor.location.line)
            except Exception:
                continue
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        out[relpath] = lines
    return out
