"""Memstats-accounting check.

The solver-memory arc (PRs 3 and 5) is pinned by la::memstats: tests
prove the implicit and sparse-R cores never materialise a dense n x n
working set by counting large allocations at the la::Matrix seam. That
proof only holds while every dense product-shaped buffer actually goes
through Matrix (whose constructor and Resize call
memstats::internal::NoteAlloc). A hot path that side-steps it — raw new
double[n*n], malloc, a product-sized std::vector<double>, or an
AlignedVector<double> outside the la/ kernel layer — is invisible to the
accounting and quietly re-introduces the memory wall the arc removed.

Flagged outside src/la/ (the kernel layer owns its own scratch and is
audited by review):

  * new double[...] / malloc / calloc / realloc / aligned_alloc
  * AlignedVector<double> declarations
  * std::vector<double> constructed with a product-shaped size
    (an expression containing '*')

Escape hatch: // lint:memstats-ok(<reason>) for buffers that are
genuinely not matrix working sets (e.g. an m*k scratch with small
constant k).
"""

NAME = "memstats"
DOC = ("dense product-shaped buffers outside src/la/ must go through "
       "la::Matrix so memstats accounting sees them")

ALLOWLIST = ("src/la/",)

_RAW_ALLOC = {
    "malloc": "malloc() bypasses memstats accounting; use la::Matrix or a "
              "standard container",
    "calloc": "calloc() bypasses memstats accounting; use la::Matrix or a "
              "standard container",
    "realloc": "realloc() bypasses memstats accounting; use la::Matrix or "
               "a standard container",
    "aligned_alloc": "aligned_alloc() bypasses memstats accounting; use "
                     "la::Matrix (already 64-byte aligned)",
}


def run(ctx):
    toks = ctx.source.tokens
    n = len(toks)
    for i, tok in enumerate(toks):
        if tok.kind != "ident":
            continue
        t = tok.text

        if t in _RAW_ALLOC and i + 1 < n and toks[i + 1].text == "(":
            ctx.report(tok.line, NAME, f"'{t}': {_RAW_ALLOC[t]}")
            continue

        # new double[...]
        if (t == "new" and i + 2 < n and toks[i + 1].text == "double"
                and toks[i + 2].text == "["):
            ctx.report(tok.line, NAME,
                       "'new double[...]' bypasses memstats accounting; "
                       "dense buffers belong in la::Matrix")
            continue

        # AlignedVector<double> outside la/ — the aligned allocator is a
        # kernel-layer implementation detail; going through it directly
        # skips the NoteAlloc seam.
        if (t == "AlignedVector" and i + 3 < n and toks[i + 1].text == "<"
                and toks[i + 2].text == "double"):
            ctx.report(tok.line, NAME,
                       "AlignedVector<double> outside src/la/ bypasses "
                       "memstats accounting; use la::Matrix")
            continue

        # std::vector<double> name(expr_with_product)
        if (t == "vector" and i + 3 < n and toks[i + 1].text == "<"
                and toks[i + 2].text == "double"
                and toks[i + 3].text == ">"):
            j = i + 4
            if j < n and toks[j].kind == "ident":
                j += 1
                if j < n and toks[j].text == "(":
                    # Scan the constructor argument list for a '*' at
                    # paren depth 1 — a product-shaped size.
                    depth = 0
                    for k in range(j, n):
                        tk = toks[k].text
                        if tk == "(":
                            depth += 1
                        elif tk == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        elif tk == "*" and depth == 1:
                            ctx.report(
                                toks[k].line, NAME,
                                "product-shaped std::vector<double> "
                                "allocation is invisible to memstats; use "
                                "la::Matrix for dense working sets")
                            break
