"""Check registry for the invariant lint suite.

Each check is a module with NAME / DOC / optional ALLOWLIST (path
prefixes exempt from the check) and run(ctx). The Check wrapper gives
the engine a uniform surface.
"""

from . import copy_hygiene, determinism, memstats, stride


class Check:
    def __init__(self, module):
        self.NAME = module.NAME
        self.DOC = module.DOC
        self._allowlist = tuple(getattr(module, "ALLOWLIST", ()))
        self._run = module.run

    def allows(self, relpath):
        """True when `relpath` is exempt from this check."""
        return any(relpath.startswith(prefix) for prefix in self._allowlist)

    def run(self, ctx):
        self._run(ctx)


ALL_CHECKS = [Check(m) for m in (determinism, stride, memstats, copy_hygiene)]


def by_name(names):
    wanted = set(names)
    known = {c.NAME for c in ALL_CHECKS}
    unknown = wanted - known
    if unknown:
        raise KeyError(f"unknown check(s): {', '.join(sorted(unknown))}; "
                       f"known: {', '.join(sorted(known))}")
    return [c for c in ALL_CHECKS if c.NAME in wanted]
