"""Determinism check.

The repo's reproducibility contract (docs/ARCHITECTURE.md): every
stochastic component draws from an explicitly seeded rhchme::Rng, fits
are bit-identical across thread counts, and quality gates in CI compare
metrics exactly. Three bug classes break that silently:

  1. Hidden entropy sources — rand()/srand(), std::random_device,
     wall-clock values used as seeds. Run-to-run output changes and the
     exact CI gates turn flaky.
  2. std <random> engines — std::mt19937 etc. are seedable but their
     distributions (std::normal_distribution, std::shuffle ordering) are
     implementation-defined, so results differ across standard
     libraries. util/rng implements its own transforms for this reason.
  3. Floating-point accumulation driven by unordered-container
     iteration — the iteration order of std::unordered_map/set is
     unspecified, so `for (kv : umap) sum += ...` changes the rounding
     (and therefore the trace) between libstdc++ versions, hash seeds
     and loads.

Escape hatch: // lint:determinism-ok(<reason>) — e.g. for a seam that
deliberately mixes in entropy behind a flag.
"""

NAME = "determinism"
DOC = ("bans rand()/std::random_device/std <random> engines/wall-clock "
       "seeds and FP accumulation in unordered-container order outside "
       "util/rng")

# The blessed RNG seam implements the generator itself.
ALLOWLIST = ("src/util/rng.h", "src/util/rng.cc")

# Identifiers that are never legitimate outside the RNG seam.
BANNED_IDENTS = {
    "rand": "rand() is unseeded global state; draw from rhchme::Rng",
    "srand": "srand() seeds hidden global state; use rhchme::Rng(seed)",
    "rand_r": "rand_r() bypasses the Rng seam; use rhchme::Rng",
    "drand48": "drand48() is hidden global state; use rhchme::Rng",
    "lrand48": "lrand48() is hidden global state; use rhchme::Rng",
    "random_device": "std::random_device is nondeterministic entropy; "
                     "derive seeds with DeriveStreamSeed",
    "mt19937": "std <random> engines/distributions are implementation-"
               "defined; use rhchme::Rng",
    "mt19937_64": "std <random> engines/distributions are implementation-"
                  "defined; use rhchme::Rng",
    "minstd_rand": "std <random> engines are implementation-defined here; "
                   "use rhchme::Rng",
    "minstd_rand0": "std <random> engines are implementation-defined here; "
                    "use rhchme::Rng",
    "default_random_engine": "std::default_random_engine differs per "
                             "standard library; use rhchme::Rng",
    "ranlux24": "std <random> engines are implementation-defined here; "
                "use rhchme::Rng",
    "ranlux48": "std <random> engines are implementation-defined here; "
                "use rhchme::Rng",
    "knuth_b": "std <random> engines are implementation-defined here; "
               "use rhchme::Rng",
    "random_shuffle": "ordering depends on an unspecified source; use "
                      "Rng::Shuffle",
    "time_since_epoch": "wall-clock values must not reach seeds or "
                        "results; timing output belongs in Stopwatch",
}

# `time(nullptr)` / `time(NULL)` / `time(0)` — the classic wall-clock
# seed. Matched as a call so struct fields named `time` stay legal.
_TIME_ARGS = {"nullptr", "NULL", "0"}

_UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
              "unordered_multiset"}

_ACCUM_OPS = {"+=", "-=", "*=", "/="}


def _skip_template_args(toks, i):
    """Given toks[i] == '<', returns the index just past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":  # Closes two template levels.
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            return i  # Not template args after all (comparison operator).
        i += 1
    return i


def run(ctx):
    toks = ctx.source.tokens
    unordered_vars = set()

    for i, tok in enumerate(toks):
        if tok.kind != "ident":
            continue
        text = tok.text

        if text in BANNED_IDENTS:
            # `rand`-family entries must be calls (next token '(') to
            # avoid flagging identifiers like a member named `rand`
            # never being... still flag: such names are banned style
            # anyway, but keep calls-only for the short common word.
            if text == "rand" and not (i + 1 < len(toks)
                                       and toks[i + 1].text == "("):
                continue
            ctx.report(tok.line, NAME, f"'{text}': {BANNED_IDENTS[text]}")
            continue

        if text == "time" and i + 2 < len(toks) and toks[i + 1].text == "(":
            arg = toks[i + 2].text
            if arg in _TIME_ARGS:
                ctx.report(tok.line, NAME,
                           "'time(...)' wall-clock seed; seeds must be "
                           "explicit (rhchme::Rng / DeriveStreamSeed)")
            continue

        # Track variables declared with an unordered container type:
        #   std::unordered_map<K, V> name ...
        if text in _UNORDERED:
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = _skip_template_args(toks, j)
            while j < len(toks) and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < len(toks) and toks[j].kind == "ident":
                unordered_vars.add(toks[j].text)
            continue

    if not unordered_vars:
        return

    # Range-for over an unordered container with accumulating ops in the
    # body: `for (const auto& kv : name) { acc += kv.second; }`.
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text not in unordered_vars:
            continue
        if i == 0 or toks[i - 1].text != ":":
            continue
        # Confirm we are inside a for-head: scan back to '(' preceded by
        # 'for' within a few tokens.
        k = i - 2
        depth = 0
        is_for = False
        while k >= 0 and i - k < 64:
            t = toks[k].text
            if t == ")":
                depth += 1
            elif t == "(":
                if depth == 0:
                    is_for = (k >= 1 and toks[k - 1].text == "for")
                    break
                depth -= 1
            k -= 1
        if not is_for:
            continue
        # Body: the statement/braced block after the for-head's ')'.
        j = i + 1
        while j < len(toks) and toks[j].text != ")":
            j += 1
        j += 1
        if j >= len(toks):
            continue
        end = len(toks)
        if toks[j].text == "{":
            depth = 0
            for k in range(j, len(toks)):
                t = toks[k].text
                if t == "{":
                    depth += 1
                elif t == "}":
                    depth -= 1
                    if depth == 0:
                        end = k
                        break
            body = toks[j:end]
        else:
            for k in range(j, len(toks)):
                if toks[k].text == ";":
                    end = k
                    break
            body = toks[j:end]
        for b in body:
            if b.text in _ACCUM_OPS:
                ctx.report(
                    b.line, NAME,
                    f"accumulation ('{b.text}') inside iteration over "
                    f"unordered container '{tok.text}': iteration order is "
                    "unspecified, so floating-point rounding differs "
                    "between runs/platforms; iterate a sorted view or use "
                    "an ordered container")
                break
