"""Stride-safety check.

Since PR 4, la::Matrix stores rows 64-byte aligned with a padded leading
dimension: element (i, j) lives at data()[i * stride() + j], stride() >=
cols(), and the padding columns are zero. Any consumer that does raw
pointer arithmetic on Matrix::data() assuming the pre-PR-4 compact
layout (i * cols() + j) silently reads cache-line padding — values are
shifted, not out of bounds, so nothing crashes and results are just
wrong. That bug class was fixed by hand across the tree in PR 4; this
check keeps it extinct.

Rule: every use of `.data()` / `->data()` on an object declared with
type (la::)Matrix must carry a // lint:stride-ok(<reason>) annotation on
the same or preceding line. The annotation is the audit trail: it states
why the flat view is safe (whole-padded-buffer kernel, benchmark
DoNotOptimize sink, single-row matrix, ...). Everything else goes
through row_ptr(i) / operator()(i, j), which are stride-correct by
construction.

Receiver typing is a file-scoped token heuristic (declarations tracked
through brace/paren scopes); the libclang engine, when available,
replaces it with real type information. std::vector / AlignedVector
data() is 1-D and exempt by construction — only Matrix receivers are
flagged.
"""

NAME = "stride"
DOC = ("raw Matrix::data() use requires a lint:stride-ok annotation; "
      "use row_ptr()/operator() for element access")

_TYPE_NAME = "Matrix"  # Also matches SparseMatrix? No: CSR arrays are 1-D.


def _matrix_decl_positions(toks):
    """Yields (index_of_declared_name, paren_depth_flag) for declarations
    whose type is (const) (la::)Matrix (&|*)* name."""
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text != _TYPE_NAME:
            continue
        # Reject member access `x.Matrix`, qualified names from other
        # namespaces `foo::Matrix` (accept `la::Matrix` / `::Matrix`).
        if i >= 1 and toks[i - 1].text == "::":
            if not (i >= 2 and toks[i - 2].text == "la"):
                continue
        if i >= 1 and toks[i - 1].text in (".", "->"):
            continue
        j = i + 1
        while j < len(toks) and toks[j].text in ("&", "*", "const"):
            j += 1
        if j >= len(toks) or toks[j].kind != "ident":
            continue
        # `Matrix Matrix::Transposed()` — the following ident is a class
        # qualifier, not a variable.
        if j + 1 < len(toks) and toks[j + 1].text == "::":
            continue
        yield j


def run(ctx):
    toks = ctx.source.tokens

    # Type-aware mode: the clang engine resolved real receiver types.
    clang_index = getattr(ctx, "clang_index", None)
    if clang_index is not None and ctx.relpath in clang_index:
        for line in sorted(set(clang_index[ctx.relpath])):
            ctx.report(line, NAME,
                       "raw la::Matrix::data() use (libclang-resolved): "
                       "rows are stride()-spaced with zero padding; use "
                       "row_ptr()/operator() or annotate "
                       "// lint:stride-ok(<reason>)")
        return

    n = len(toks)

    # Brace and paren matching over token indices.
    brace_match = {}
    paren_match = {}
    brace_stack, paren_stack = [], []
    enclosing_brace = [None] * n  # Innermost open '{' index at each token.
    enclosing_paren = [None] * n
    for i, tok in enumerate(toks):
        enclosing_brace[i] = brace_stack[-1] if brace_stack else None
        enclosing_paren[i] = paren_stack[-1] if paren_stack else None
        t = tok.text
        if tok.kind != "punct":
            continue
        if t == "{":
            brace_stack.append(i)
        elif t == "}" and brace_stack:
            brace_match[brace_stack.pop()] = i
        elif t == "(":
            paren_stack.append(i)
        elif t == ")" and paren_stack:
            paren_match[paren_stack.pop()] = i
    for i in brace_stack:  # Unbalanced input: close at EOF.
        brace_match[i] = n

    # Scope interval per declared Matrix name. Declarations are hoisted
    # to their whole enclosing brace scope so class members declared
    # below the methods that use them still resolve. Parameters scope to
    # the function body that follows the signature's ')'.
    intervals = []  # (name, start_index, end_index)
    for j in _matrix_decl_positions(toks):
        name = toks[j].text
        paren = enclosing_paren[j]
        if paren is not None:
            close = paren_match.get(paren, n)
            k = close + 1
            # Skip cv-qualifiers/noexcept/override between ')' and '{'.
            while k < n and toks[k].kind == "ident":
                k += 1
            if k < n and toks[k].text == "{":
                intervals.append((name, k, brace_match.get(k, n)))
            # Prototype without a body: the name scopes nowhere.
        else:
            brace = enclosing_brace[j]
            if brace is None:
                intervals.append((name, 0, n))  # File scope.
            else:
                intervals.append((name, brace, brace_match.get(brace, n)))

    if not intervals:
        return
    by_name = {}
    for name, start, end in intervals:
        by_name.setdefault(name, []).append((start, end))

    # Receiver scan: name (.|->) data ( ) with the use inside one of the
    # name's declaration scopes.
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text not in by_name:
            continue
        if not (i + 3 < n and toks[i + 1].text in (".", "->")
                and toks[i + 2].text == "data"
                and toks[i + 3].text == "("):
            continue
        if any(start <= i <= end for start, end in by_name[tok.text]):
            ctx.report(tok.line, NAME,
                       f"raw data() on la::Matrix '{tok.text}': rows are "
                       "stride()-spaced with zero padding, so flat "
                       "(i*cols+j) arithmetic reads padding; use "
                       "row_ptr()/operator() or annotate "
                       "// lint:stride-ok(<reason>)")
