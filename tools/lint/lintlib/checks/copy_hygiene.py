"""Copy-hygiene check (PR 5's bug class).

Two accessor shapes cost real memory and correctness on this codebase:

  1. By-value return of a stored matrix — `Matrix relation() const
     { return r_; }` copies an n x n (or n x c) buffer on every call.
     PR 5 found call sites paying a full transposed-relation copy per
     solver iteration this way; the fix is `const Matrix&`.
  2. Non-const reference accessors on shared state — `Matrix& relation()
     { return r_; }` lets callers mutate state that other threads read
     (the ErrorMatrix const-read race fixed in PR 5 came from exactly
     this shape), and defeats the copy-on-write discipline of the
     ensemble members.

Detection: member-function bodies of the form

    [la::]Matrix|SparseMatrix [&] name() [const] { return member_; }

where `member_` is a trailing-underscore identifier (the project's
member naming convention). Factories that return fresh values
(`Transposed()`, `ToDense()`) do not match — their bodies are not a bare
member return. Moves (`return std::move(m_);`) do not match either.

Escape hatch: // lint:copy-ok(<reason>) — e.g. a deliberately mutable
builder object not shared across threads.
"""

NAME = "copy"
DOC = ("flags by-value returns of stored matrices and non-const "
       "reference accessors (use const Matrix&)")

_TYPES = {"Matrix", "SparseMatrix"}


def run(ctx):
    toks = ctx.source.tokens
    n = len(toks)
    for i, tok in enumerate(toks):
        if tok.kind != "ident" or tok.text not in _TYPES:
            continue
        # Qualified uses: accept la::Matrix, reject other::Matrix and
        # member access.
        if i >= 1 and toks[i - 1].text == "::":
            if not (i >= 2 and toks[i - 2].text == "la"):
                continue
        if i >= 1 and toks[i - 1].text in (".", "->", "new"):
            continue
        type_line = tok.line
        j = i + 1
        is_ref = False
        is_const_ret = i >= 1 and toks[i - 1].text == "const" or (
            i >= 3 and toks[i - 1].text == "::" and toks[i - 3].text == "const")
        while j < n and toks[j].text in ("&", "*"):
            if toks[j].text == "&":
                is_ref = True
            j += 1
        # Function name, possibly qualified: name or Qual::name.
        if j >= n or toks[j].kind != "ident":
            continue
        name = toks[j].text
        j += 1
        while j + 1 < n and toks[j].text == "::" and toks[j + 1].kind == "ident":
            name = toks[j + 1].text
            j += 2
        # Parameterless call signature: ( )
        if j + 1 >= n or toks[j].text != "(" or toks[j + 1].text != ")":
            continue
        j += 2
        if j < n and toks[j].text == "const":
            j += 1
        # Body: { return member_; }
        if (j + 4 < n and toks[j].text == "{" and toks[j + 1].text == "return"
                and toks[j + 2].kind == "ident"
                and toks[j + 2].text.endswith("_")
                and toks[j + 3].text == ";" and toks[j + 4].text == "}"):
            member = toks[j + 2].text
            if not is_ref:
                ctx.report(
                    type_line, NAME,
                    f"'{name}()' returns stored matrix '{member}' by value "
                    "— a full buffer copy per call; return const "
                    "Matrix& instead")
            elif not is_const_ret:
                ctx.report(
                    type_line, NAME,
                    f"'{name}()' hands out a non-const reference to "
                    f"'{member}': shared state becomes mutable through an "
                    "accessor (PR 5's const-read race class); return "
                    "const Matrix& from a const member function")
