"""Lightweight C++ lexer for the invariant lint suite.

Not a compiler front end: the goal is a token stream precise enough for
pattern-level checks (banned identifiers, declaration tracking, member
call shapes) with exact line numbers, plus the `// lint:<check>-ok(...)`
annotation side channel. Comments, string literals (including raw
strings) and character literals are consumed so their contents can never
produce false tokens; preprocessor lines are kept as single tokens so
checks can see #include targets.

The clang engine (lintlib/clang_engine.py) refines receiver typing when
libclang is importable; this tokenizer is the always-available contract
that CI relies on.
"""

import re
from dataclasses import dataclass
from typing import Dict, List

# Matches one lint annotation inside a // comment:
#   // lint:stride-ok(reason text)
# The reason is mandatory; an empty reason is reported by the engine.
ANNOTATION_RE = re.compile(r"lint:([a-z][a-z0-9_-]*)-ok\(([^)]*)\)")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r\f\v]+)
  | (?P<newline>\n)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<raw_string>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
  | (?P<string>"(?:[^"\\\n]|\\.)*")
  | (?P<char>'(?:[^'\\\n]|\\.)*')
  | (?P<number>\.?\d(?:[\w.]|[eEpP][+-])*)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<punct>->\*|->|\+\+|--|<<=|>>=|<=>|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|::|\.\.\.|.)
    """,
    re.VERBOSE | re.DOTALL,
)

_PREPROC_RE = re.compile(r"^[ \t]*#")


@dataclass
class Token:
    kind: str  # 'ident' | 'number' | 'punct' | 'string' | 'char' | 'preproc'
    text: str
    line: int


class SourceFile:
    """Tokenized view of one C++ source file.

    Attributes:
      path: the path the file was read from (as given).
      tokens: significant tokens only (no whitespace/comments).
      annotations: line -> list of (check, reason) lint annotations; an
        annotation on line L covers violations on L and L+1 (annotation
        above the offending line or trailing on the same line).
      lines: raw text split into lines (for diagnostics).
    """

    def __init__(self, path, text):
        self.path = path
        self.lines = text.split("\n")
        self.tokens: List[Token] = []
        self.annotations: Dict[int, List] = {}
        self._lex(text)

    def _note_annotations(self, comment_text, line):
        for m in ANNOTATION_RE.finditer(comment_text):
            self.annotations.setdefault(line, []).append(
                (m.group(1), m.group(2).strip()))

    def _lex(self, text):
        # Preprocessor lines (with their continuations) become single
        # tokens so `#include "la/matrix.h"` stays inspectable but its
        # contents produce no identifier tokens.
        line = 1
        pos = 0
        n = len(text)
        while pos < n:
            # Detect a preprocessor directive at start-of-line.
            bol = pos == 0 or text[pos - 1] == "\n"
            if bol and _PREPROC_RE.match(text, pos):
                end = pos
                while end < n:
                    nl = text.find("\n", end)
                    if nl == -1:
                        end = n
                        break
                    if nl > end and text[nl - 1] == "\\":
                        end = nl + 1
                        continue
                    end = nl
                    break
                directive = text[pos:end]
                self.tokens.append(Token("preproc", directive, line))
                line += directive.count("\n")
                pos = end
                continue
            m = _TOKEN_RE.match(text, pos)
            if m is None:  # Unrecognised byte; skip defensively.
                pos += 1
                continue
            kind = m.lastgroup
            # The raw_string delimiter group fires alongside raw_string.
            if kind == "delim":
                kind = "raw_string"
            tok = m.group(0)
            if kind == "newline":
                line += 1
            elif kind == "line_comment":
                self._note_annotations(tok, line)
            elif kind == "block_comment":
                self._note_annotations(tok, line)
                line += tok.count("\n")
            elif kind in ("raw_string", "string", "char"):
                self.tokens.append(
                    Token("string" if kind != "char" else "char", tok, line))
                line += tok.count("\n")
            elif kind == "ident":
                self.tokens.append(Token("ident", tok, line))
            elif kind == "number":
                self.tokens.append(Token("number", tok, line))
            elif kind == "punct":
                self.tokens.append(Token("punct", tok, line))
            pos = m.end()

    # ---- Helpers shared by checks ----------------------------------------

    def includes(self):
        """Header paths named by #include directives."""
        out = []
        for t in self.tokens:
            if t.kind != "preproc":
                continue
            m = re.search(r'#\s*include\s*[<"]([^>"]+)[>"]', t.text)
            if m:
                out.append(m.group(1))
        return out

    def annotated(self, line, check):
        """True if a lint:<check>-ok annotation covers `line`."""
        for ann_line in (line, line - 1):
            for name, _reason in self.annotations.get(ann_line, ()):
                if name == check:
                    return True
        return False
