"""Invariant lint suite for the RHCHME codebase.

Statically enforces the contracts the test suite can only probe
dynamically: determinism (seeded Rng only, no unordered-order FP
accumulation), stride safety (no raw Matrix::data() arithmetic),
memstats accounting (dense buffers go through la::Matrix) and copy
hygiene (no by-value or mutable-ref accessors to stored matrices).

Entry point: tools/lint/rhchme_lint.py. Self-test corpus:
tools/lint/fixtures, run by tools/lint/selftest.py (ctest:
lint_selftest).
"""
