"""Check runner for the invariant lint suite.

Each check module exposes
    NAME        annotation key ("stride" -> // lint:stride-ok(reason))
    DOC         one-line description shown by --list-checks
    run(ctx)    reports violations through ctx.report(...)

The engine owns file discovery, annotation suppression (with reason
enforcement), stale-annotation detection and result formatting. Checks
see one file at a time through a CheckContext.
"""

import json
import os
from dataclasses import dataclass, field
from typing import List

from . import tokens

SOURCE_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

# Directories scanned by default, relative to the repo root.
DEFAULT_ROOTS = ("src", "bench", "tools", "tests")

# Never lint the lint suite's own fixture corpus (it is violations on
# purpose) or build trees.
EXCLUDED_PARTS = ("tools/lint/fixtures", "build", "build-")


@dataclass
class Violation:
    path: str
    line: int
    check: str
    message: str

    def format(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


@dataclass
class CheckContext:
    source: tokens.SourceFile
    relpath: str
    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Violation] = field(default_factory=list)
    used_annotations: set = field(default_factory=set)

    def report(self, line, check, message):
        if self.source.annotated(line, check):
            for ann_line in (line, line - 1):
                for name, _ in self.source.annotations.get(ann_line, ()):
                    if name == check:
                        self.used_annotations.add((ann_line, check))
            self.suppressed.append(Violation(self.relpath, line, check, message))
        else:
            self.violations.append(Violation(self.relpath, line, check, message))


def discover_files(root, roots=DEFAULT_ROOTS):
    out = []
    for sub in roots:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root).replace(os.sep, "/")
            if any(part in rel_dir for part in EXCLUDED_PARTS):
                dirnames[:] = []
                continue
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    out.append(os.path.join(dirpath, name))
    return sorted(out)


def lint_file(path, root, checks, clang_index=None):
    """Runs `checks` over one file; returns (violations, warnings).

    `clang_index`, when provided by the clang engine, maps relpath ->
    precise line sets used by type-aware checks; token-level checks
    ignore it.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    relpath = os.path.relpath(path, root).replace(os.sep, "/")
    source = tokens.SourceFile(relpath, text)
    ctx = CheckContext(source=source, relpath=relpath)
    ctx.clang_index = clang_index
    active_names = set()
    for check in checks:
        if check.allows(relpath):
            continue
        active_names.add(check.NAME)
        check.run(ctx)

    warnings = []
    # Annotation hygiene: a reason is mandatory, and an annotation that
    # suppresses nothing is stale (kept as a warning: engine precision
    # may legitimately differ between the token and clang backends).
    for line, anns in sorted(source.annotations.items()):
        for name, reason in anns:
            if name not in {c.NAME for c in checks}:
                warnings.append(f"{relpath}:{line}: unknown lint annotation "
                                f"'lint:{name}-ok' (known: "
                                f"{', '.join(sorted(c.NAME for c in checks))})")
                continue
            if not reason:
                ctx.violations.append(Violation(
                    relpath, line, name,
                    f"annotation 'lint:{name}-ok' needs a non-empty reason"))
            if (name in active_names
                    and (line, name) not in ctx.used_annotations):
                warnings.append(f"{relpath}:{line}: stale annotation "
                                f"'lint:{name}-ok' suppresses nothing here")
    return ctx.violations, warnings


def run(root, checks, files=None, clang_index=None):
    """Lints `files` (or the default tree under `root`)."""
    paths = files if files else discover_files(root)
    all_violations, all_warnings = [], []
    for path in paths:
        violations, warnings = lint_file(path, root, checks, clang_index)
        all_violations.extend(violations)
        all_warnings.extend(warnings)
    return all_violations, all_warnings


def to_json(violations, warnings):
    return json.dumps(
        {
            "violations": [v.__dict__ for v in violations],
            "warnings": warnings,
        },
        indent=2,
    )
