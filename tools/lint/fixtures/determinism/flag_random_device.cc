// Must-flag: hardware entropy + std <random> engine. Both the
// random_device and the mt19937 tokens are violations.
#include <random>

double Draw() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<double>(gen()) / 4294967296.0;
}
