// Must-pass: the src/util/fault.cc soak-seed seam, annotated on the
// *preceding* line (the annotation grammar covers both the same line and
// the line above — long expressions cannot fit a trailing annotation).
#include <chrono>
#include <cstdint>

uint64_t SoakSeed() {
  const auto tick = std::chrono::steady_clock::now();
  // lint:determinism-ok(opt-in soak entropy, logged and replayable via FaultArmSeeded)
  const uint64_t now = static_cast<uint64_t>(tick.time_since_epoch().count());
  return now * 0x9e3779b97f4a7c15ULL;
}
