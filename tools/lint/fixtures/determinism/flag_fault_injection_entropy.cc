// Must-flag: the fault-registry soak seed derives from the steady clock;
// without an annotation naming the replay story, a clock-derived seed is
// exactly the nondeterminism the check exists to catch.
#include <chrono>
#include <cstdint>

uint64_t SoakSeed() {
  const auto tick = std::chrono::steady_clock::now();
  const uint64_t now = static_cast<uint64_t>(tick.time_since_epoch().count());
  return now * 0x9e3779b97f4a7c15ULL;
}
