// Must-flag: C library RNG — unseeded hidden global state.
#include <cstdlib>

int NoisyPick(int n) {
  std::srand(42);
  return std::rand() % n;
}
