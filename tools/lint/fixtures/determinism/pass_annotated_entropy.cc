// Must-pass: a deliberate entropy seam, annotated with its reason.
#include <random>

uint64_t EntropySalt() {
  std::random_device rd;  // lint:determinism-ok(opt-in --entropy CLI salt, never defaulted)
  return (static_cast<uint64_t>(rd()) << 32) | rd();
}
