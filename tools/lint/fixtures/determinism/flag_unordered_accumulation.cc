// Must-flag: floating-point accumulation in unordered-container
// iteration order. The sum's rounding depends on the hash seed, load
// factor and standard library — traces stop being bit-identical.
#include <unordered_map>

double TotalWeight(const std::unordered_map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) {
    total += kv.second;
  }
  return total;
}
