// Must-flag: time_since_epoch is the canonical clock-to-integer bridge
// for "random" seeds; wall-clock values must not reach seeds or results.
#include <chrono>

#include "util/rng.h"

rhchme::Rng MakeRng() {
  auto ticks =
      std::chrono::steady_clock::now().time_since_epoch().count();
  return rhchme::Rng(static_cast<uint64_t>(ticks));
}
