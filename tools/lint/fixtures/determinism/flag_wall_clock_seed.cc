// Must-flag: wall-clock seeding — different stream every run.
#include <ctime>

#include "util/rng.h"

rhchme::Rng MakeRng() { return rhchme::Rng(time(nullptr)); }

unsigned LegacySeed() { return static_cast<unsigned>(time(NULL)); }
