// Must-pass: the blessed determinism idioms — explicit seeds, derived
// per-stream generators, ordered-container accumulation, and `time` as
// an ordinary identifier (not a wall-clock call).
#include <map>

#include "util/rng.h"

double OrderedTotal(const std::map<int, double>& weights) {
  double total = 0.0;
  for (const auto& kv : weights) total += kv.second;
  return total;
}

double Member(uint64_t seed, uint64_t member) {
  rhchme::Rng rng = rhchme::StreamRng(seed, member);
  double time = rng.Uniform();  // 'time' as a variable is fine.
  return time;
}
