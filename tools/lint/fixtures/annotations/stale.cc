// Special fixture (see selftest.py): an annotation that suppresses
// nothing must produce a stale-annotation warning (not a violation).
int Identity(int x) {
  return x;  // lint:stride-ok(nothing strided here at all)
}
