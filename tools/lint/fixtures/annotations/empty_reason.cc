// Special fixture (see selftest.py): an annotation with an empty reason
// must itself be a violation — the reason is the audit trail.
#include <random>

uint64_t Salt() {
  std::random_device rd;  // lint:determinism-ok()
  return rd();
}
