// Special fixture (see selftest.py): annotations naming a check that
// does not exist must warn — typos silently suppressing nothing.
int Identity(int x) {
  return x;  // lint:frobnicate-ok(no such check)
}
