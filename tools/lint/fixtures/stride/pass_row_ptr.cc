// Must-pass: the stride-correct idioms — row_ptr(i) for row-contiguous
// kernels, operator()(i, j) for elements.
#include "la/matrix.h"

double SumRows(const rhchme::la::Matrix& m) {
  double s = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row_ptr(i);
    for (std::size_t j = 0; j < m.cols(); ++j) s += r[j];
  }
  return s;
}

double Corner(const rhchme::la::Matrix& m) { return m(0, 0); }
