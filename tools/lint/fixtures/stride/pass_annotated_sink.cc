// Must-pass: annotated flat uses — the audit trail for benchmark sinks
// and whole-padded-buffer kernels.
#include "la/matrix.h"

namespace testing {
template <typename T>
void DoNotOptimize(T&&) {}
}  // namespace testing

void Bench(const rhchme::la::Matrix& c) {
  // lint:stride-ok(optimizer sink; pointer identity only, no element access)
  testing::DoNotOptimize(c.data());
}

double FirstEntry(const rhchme::la::Matrix& m) {
  return *m.data();  // lint:stride-ok(element (0,0) only; offset 0 is stride-free)
}
