// Must-flag: the PR 4 bug class verbatim — flat (i*cols+j) walk over
// Matrix::data(). Rows are stride()-spaced, so for any cols() not a
// multiple of the cache line this reads zero padding instead of the
// next row's leading elements. Values shift; nothing crashes.
#include "la/matrix.h"

double SumFlat(const rhchme::la::Matrix& m) {
  const double* p = m.data();
  double s = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      s += p[i * m.cols() + j];
    }
  }
  return s;
}
