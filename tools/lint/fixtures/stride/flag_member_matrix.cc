// Must-flag: raw data() on a Matrix class member (declared at class
// scope, used in a method).
#include <cstring>

#include "la/matrix.h"

class Snapshot {
 public:
  void CopyOut(double* dst) const {
    // Wrong for padded strides: copies padding into a compact buffer.
    std::memcpy(dst, state_.data(), state_.rows() * state_.cols() * 8);
  }

 private:
  rhchme::la::Matrix state_;
};
