// Must-pass: data() on 1-D containers is always legal — and a Matrix
// with the same NAME in a different function must not poison the
// receiver typing (per-scope tracking, not per-file).
#include <vector>

#include "la/matrix.h"

double First(const rhchme::la::Matrix& buf) {
  return buf(0, 0);  // 'buf' is a Matrix here...
}

double SumVec() {
  std::vector<double> buf(64, 1.0);
  const double* p = buf.data();  // ...and a plain vector here.
  double s = 0.0;
  for (std::size_t i = 0; i < buf.size(); ++i) s += p[i];
  return s;
}
