// Must-flag: by-value return of a stored matrix — a full n x n copy on
// every call (the PR 5 per-iteration transposed-relation copy class).
#include "la/matrix.h"

namespace rhchme {

class Member {
 public:
  la::Matrix relation() const { return relation_; }

 private:
  la::Matrix relation_;
};

}  // namespace rhchme
