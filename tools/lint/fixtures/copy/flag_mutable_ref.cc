// Must-flag: non-const reference accessor — shared state becomes
// mutable through an innocuous-looking getter (the ErrorMatrix
// const-read race came from this shape).
#include "la/matrix.h"

namespace rhchme {

class SharedState {
 public:
  la::Matrix& centroids() { return centroids_; }

 private:
  la::Matrix centroids_;
};

}  // namespace rhchme
