// Must-pass: an annotated mutable accessor on a single-threaded builder.
#include "la/matrix.h"

namespace rhchme {

class EnsembleBuilder {
 public:
  // lint:copy-ok(builder is thread-local during construction; never shared)
  la::Matrix& scratch() { return scratch_; }

 private:
  la::Matrix scratch_;
};

}  // namespace rhchme
