// Must-pass: the blessed accessor shape, plus value-returning factories
// (fresh values, not stored members) which are legitimate by-value.
#include <utility>

#include "la/matrix.h"

namespace rhchme {

class Member {
 public:
  const la::Matrix& relation() const { return relation_; }

  // Factory: builds a fresh value — not a bare member return.
  la::Matrix Doubled() const {
    la::Matrix out = relation_;
    out.Scale(2.0);
    return out;
  }

  // Move-out transfer of ownership is not a copy.
  la::Matrix Take() { return std::move(relation_); }

 private:
  la::Matrix relation_;
};

}  // namespace rhchme
