// Must-pass: dense working sets through la::Matrix (memstats-counted)
// and linear std::vector<double> (O(n), not a dense matrix shape).
#include <cstddef>
#include <vector>

#include "la/matrix.h"

rhchme::la::Matrix Dense(std::size_t n) {
  return rhchme::la::Matrix(n, n);
}

std::vector<double> Degrees(std::size_t n) {
  return std::vector<double>(n, 0.0);
}
