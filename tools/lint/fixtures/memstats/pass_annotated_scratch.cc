// Must-pass: an annotated product-shaped buffer with a bounded factor.
#include <cstddef>
#include <vector>

std::vector<double> ChunkSums(std::size_t nchunks) {
  // lint:memstats-ok(nchunks x 8 partials; bounded by the pool size, not n^2)
  std::vector<double> partial(nchunks * 8, 0.0);
  return partial;
}
