// Must-flag: C allocation of a dense buffer.
#include <cstddef>
#include <cstdlib>

double* RawBuffer(std::size_t n) {
  return static_cast<double*>(malloc(n * n * sizeof(double)));
}
