// Must-flag: raw dense buffer — invisible to la::memstats, so the
// solver-memory tests would no longer prove anything about this path.
#include <cstddef>

double* MakeDense(std::size_t n) { return new double[n * n]; }
