// Must-flag: AlignedVector<double> outside src/la/ — the aligned
// allocator is a kernel-layer detail; direct use skips NoteAlloc.
#include <cstddef>

#include "la/aligned.h"

rhchme::la::AlignedVector<double> Scratch(std::size_t n) {
  return rhchme::la::AlignedVector<double>(n * n, 0.0);
}
