// Must-flag: product-shaped std::vector<double> — an n x n working set
// that never hits the memstats seam.
#include <cstddef>
#include <vector>

std::vector<double> Gram(std::size_t n) {
  std::vector<double> gram(n * n, 0.0);
  return gram;
}
