#!/usr/bin/env python3
"""Project-specific static analysis: enforce the RHCHME invariants.

Checks (each with a // lint:<check>-ok(<reason>) escape hatch, reason
mandatory — the annotation is the audit trail):

  determinism  no rand()/std::random_device/std <random> engines/
               wall-clock seeds outside src/util/rng; no floating-point
               accumulation driven by unordered-container iteration
  stride       raw la::Matrix::data() uses must be annotated — rows are
               stride()-padded, so flat (i*cols+j) arithmetic silently
               reads cache-line padding (the PR 4 bug class)
  memstats     dense product-shaped buffers outside src/la/ must go
               through la::Matrix so memstats accounting stays truthful
  copy         no by-value returns of stored matrices, no non-const
               reference accessors on shared state (the PR 5 bug class)

Engines: `--engine tokens` (pure-Python lexer, always available — the CI
contract) or `--engine clang` (libclang type resolution for stride
receivers, used when the bindings are importable). Default `auto`
prefers clang when present, with identical reporting either way.

Usage:
  python3 tools/lint/rhchme_lint.py                  # lint the tree
  python3 tools/lint/rhchme_lint.py src/foo.cc ...   # specific files
  python3 tools/lint/rhchme_lint.py --check stride --json out.json

Exit codes: 0 clean, 1 violations found, 2 usage/config error.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from lintlib import checks, clang_engine, engine  # noqa: E402


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*",
                        help="files to lint (default: src/ bench/ tools/ "
                             "tests/ under --root)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from "
                             "this script)")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME",
                        help="run only this check (repeatable)")
    parser.add_argument("--engine", choices=("auto", "tokens", "clang"),
                        default="auto",
                        help="receiver-typing engine for the stride check "
                             "(default: auto = clang if importable, else "
                             "tokens)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the clang engine "
                             "(default: <root>/build/compile_commands.json)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write results as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-file OK summary")
    parser.add_argument("--list-checks", action="store_true",
                        help="list available checks and exit")
    args = parser.parse_args()

    active = checks.ALL_CHECKS
    if args.list_checks:
        for c in active:
            print(f"{c.NAME:12s} {c.DOC}")
        return 0
    if args.check:
        try:
            active = checks.by_name(args.check)
        except KeyError as e:
            print(f"error: {e.args[0]}", file=sys.stderr)
            return 2

    root = args.root or os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    if not os.path.isdir(root):
        print(f"error: --root {root} is not a directory", file=sys.stderr)
        return 2

    files = [os.path.abspath(f) for f in args.files] or None
    if files:
        missing = [f for f in files if not os.path.isfile(f)]
        if missing:
            print(f"error: no such file: {', '.join(missing)}",
                  file=sys.stderr)
            return 2

    clang_index = None
    if args.engine in ("auto", "clang"):
        paths = files or engine.discover_files(root)
        clang_index = clang_engine.build_index(root, paths,
                                               args.compile_commands)
        if clang_index is None and args.engine == "clang":
            print("error: --engine clang requested but the libclang "
                  "bindings are unavailable (pip module 'clang' + "
                  "libclang.so)", file=sys.stderr)
            return 2

    violations, warnings = engine.run(root, active, files=files,
                                      clang_index=clang_index)

    for w in warnings:
        print(f"warning: {w}")
    for v in violations:
        print(v.format())

    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(engine.to_json(violations, warnings))

    if violations:
        print(f"\nFAIL: {len(violations)} violation(s) across "
              f"{len({v.path for v in violations})} file(s). Fix them or "
              "annotate with // lint:<check>-ok(<reason>) where the "
              "pattern is deliberate.")
        return 1
    if not args.quiet:
        scanned = files or engine.discover_files(root)
        mode = "clang" if clang_index is not None else "tokens"
        print(f"OK: {len(scanned)} file(s) clean under "
              f"{', '.join(c.NAME for c in active)} "
              f"({mode} engine; {len(warnings)} warning(s)).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
