#!/usr/bin/env python3
"""Run clang-tidy (config: .clang-tidy) and gate CI on NEW findings only.

The committed baseline (tools/lint/CLANG_TIDY.baseline.json) records the
accepted findings as {"<relpath>::<check>": count}. This gate fails when
a (file, check) pair appears that the baseline does not know, or when a
known pair's count grows — so the tree can only ratchet down, while
pre-existing findings never block unrelated work. Line numbers are
deliberately not part of the fingerprint: they churn on every edit.

Bootstrap: a baseline with "bootstrap": true (the committed state until
the first CI run on a machine with clang-tidy) reports findings, writes
the would-be baseline next to the current one (build/CLANG_TIDY.findings
.json by default), and exits 0 with a loud note to commit it. This keeps
the gate honest on machines without clang-tidy while giving CI a
one-commit path to a real ratchet.

Usage:
  python3 tools/lint/clang_tidy_gate.py \
      [--compile-commands build/compile_commands.json] \
      [--baseline tools/lint/CLANG_TIDY.baseline.json] \
      [--clang-tidy clang-tidy-15] [--jobs N] \
      [--update-baseline]

Exit codes: 0 gate passed (or bootstrap), 1 new findings, 2 setup error
(missing clang-tidy binary or compile_commands.json).
"""

import argparse
import collections
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "tools", "lint",
                                "CLANG_TIDY.baseline.json")

# Only first-party translation units are gated; headers are reached via
# HeaderFilterRegex in .clang-tidy.
GATED_DIRS = ("src/", "bench/", "tools/", "tests/")

_FINDING_RE = re.compile(
    r"^(?P<path>[^:\s][^:]*):(?P<line>\d+):(?P<col>\d+):\s+"
    r"(?P<sev>warning|error):\s+(?P<msg>.*?)\s+\[(?P<check>[\w.,-]+)\]\s*$")


def find_clang_tidy(explicit):
    candidates = [explicit] if explicit else []
    env = os.environ.get("CLANG_TIDY")
    if env:
        candidates.append(env)
    candidates.append("clang-tidy")
    candidates.extend(f"clang-tidy-{v}" for v in range(20, 13, -1))
    for c in candidates:
        if c and shutil.which(c):
            return shutil.which(c)
    return None


def gated_sources(compile_commands):
    out = []
    for entry in compile_commands:
        path = os.path.realpath(
            os.path.join(entry.get("directory", ""), entry.get("file", "")))
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        if rel.startswith(GATED_DIRS) and "tools/lint/fixtures" not in rel:
            out.append(path)
    return sorted(set(out))


def run_one(clang_tidy, build_dir, path):
    proc = subprocess.run(
        [clang_tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, check=False)
    findings = []
    for line in proc.stdout.splitlines():
        m = _FINDING_RE.match(line)
        if not m:
            continue
        fpath = os.path.realpath(m.group("path"))
        if not fpath.startswith(REPO_ROOT + os.sep):
            continue  # System/third-party headers.
        rel = os.path.relpath(fpath, REPO_ROOT).replace(os.sep, "/")
        if "tools/lint/fixtures" in rel:
            continue
        for check in m.group("check").split(","):
            findings.append((rel, check.strip(), int(m.group("line")),
                             m.group("msg")))
    return findings


def to_counts(findings):
    counts = collections.Counter(f"{rel}::{check}"
                                 for rel, check, _line, _msg in findings)
    return dict(sorted(counts.items()))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compile-commands",
                        default=os.path.join(REPO_ROOT, "build",
                                             "compile_commands.json"))
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--clang-tidy", default=None,
                        help="binary to use (default: $CLANG_TIDY, then "
                             "clang-tidy[-N] on PATH)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from this run's findings "
                             "(clears the bootstrap flag)")
    parser.add_argument("--findings-out", default=None,
                        help="where to write the machine-readable findings "
                             "(default: <build dir>/CLANG_TIDY.findings.json)")
    args = parser.parse_args()

    clang_tidy = find_clang_tidy(args.clang_tidy)
    if clang_tidy is None:
        print("error: no clang-tidy binary found (tried --clang-tidy, "
              "$CLANG_TIDY, clang-tidy[-20..-14] on PATH). Install "
              "clang-tidy or point --clang-tidy at one.")
        return 2

    try:
        with open(args.compile_commands, "r", encoding="utf-8") as f:
            compile_commands = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {args.compile_commands}: {e}\n"
              "Configure first: cmake -B build -S . "
              "(CMAKE_EXPORT_COMPILE_COMMANDS is on by default)")
        return 2

    build_dir = os.path.dirname(os.path.abspath(args.compile_commands))
    sources = gated_sources(compile_commands)
    if not sources:
        print("error: compile_commands.json lists no gated sources "
              f"(under {', '.join(GATED_DIRS)})")
        return 2

    print(f"clang-tidy gate: {len(sources)} TU(s) with {clang_tidy}")
    findings = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for result in pool.map(
                lambda p: run_one(clang_tidy, build_dir, p), sources):
            findings.extend(result)
    findings.sort()
    counts = to_counts(findings)

    findings_out = args.findings_out or os.path.join(
        build_dir, "CLANG_TIDY.findings.json")
    payload = {
        "bootstrap": False,
        "tool": os.path.basename(clang_tidy),
        "findings": counts,
    }
    try:
        with open(findings_out, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
    except OSError as e:
        print(f"note: could not write {findings_out}: {e}")

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({sum(counts.values())} finding(s), "
              f"{len(counts)} fingerprint(s))")
        return 0

    try:
        with open(args.baseline, "r", encoding="utf-8") as f:
            baseline_doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read baseline {args.baseline}: {e}")
        return 2
    baseline = baseline_doc.get("findings", {})

    new = []
    for key, count in counts.items():
        accepted = baseline.get(key, 0)
        if count > accepted:
            new.append((key, accepted, count))
    fixed = [(k, v) for k, v in baseline.items() if counts.get(k, 0) < v]

    for key, accepted, count in new:
        print(f"NEW: {key}: {count} (baseline {accepted})")
    for key, v in fixed:
        print(f"note: {key}: improved to {counts.get(key, 0)} "
              f"(baseline {v}) — ratchet down with --update-baseline")

    total = sum(counts.values())
    if baseline_doc.get("bootstrap"):
        print(f"\nBOOTSTRAP: baseline has no recorded run yet; observed "
              f"{total} finding(s) across {len(counts)} fingerprint(s). "
              f"Commit {os.path.relpath(findings_out, REPO_ROOT)} as "
              f"tools/lint/CLANG_TIDY.baseline.json (or rerun with "
              "--update-baseline) to arm the ratchet. Exiting 0.")
        return 0
    if new:
        print(f"\nFAIL: {len(new)} new clang-tidy fingerprint(s) vs "
              f"baseline. Fix them, or if accepted deliberately, "
              "regenerate with --update-baseline and commit the diff.")
        return 1
    print(f"\nOK: no new clang-tidy findings ({total} accepted by "
          f"baseline, {len(fixed)} fingerprint(s) improved).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
