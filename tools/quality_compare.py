#!/usr/bin/env python3
"""Compare a rhchme_scenarios JSON run against the committed baseline.

Guards the clustering-quality trajectory in CI — the quality twin of
tools/bench_compare.py:

  * refuses to accept a current JSON produced by a **debug** build: the
    committed baseline is generated from Release, and while metrics are
    deterministic *within* a build, floating-point contraction differs
    across optimisation levels, so a debug comparison measures the
    build gap, not a regression;
  * skips (exit 0, with a note) when the current run dispatched a
    different kernel table than the baseline (scalar vs avx2 vs avx512
    vs neon) — different kernels, different rounding, different k-means
    trajectories, so the comparison would measure the ISA, not a
    regression. Legs that pin RHCHME_FORCE_ISA pass --require-isa-match
    to turn the skip into a hard failure;
  * fails (exit 1) when any cell present in both files dropped by more
    than --threshold (default 0.05, absolute) in NMI, ARI, purity or
    FScore. Metrics are seed-averaged and bit-identical across thread
    counts, so any drop beyond the threshold is an algorithmic change,
    not machine noise;
  * cells missing from either side are reported but never fatal, so
    extending or trimming the grid does not break CI;
  * `seconds` is informational and never compared.

Usage:
  python3 tools/quality_compare.py \
      [--current build/QUALITY_scenarios.json] \
      [--baseline QUALITY_scenarios.baseline.json] \
      [--threshold 0.05] [--allow-debug] [--allow-isa-mismatch]
      [--require-isa-match]

Regenerating the baseline (Release build only; pin the kernel table so
the committed context matches what CI dispatches):
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
  (cd build && ./rhchme_scenarios --quick --force_isa avx2)
  cp build/QUALITY_scenarios.json QUALITY_scenarios.baseline.json
"""

import argparse
import json
import sys

METRICS = ("nmi", "ari", "purity", "fscore")


def cell_key(cell):
    """Identity of a grid cell: everything but the measured values.

    `corruption_mode` defaults to "spike" so baselines generated before
    the kNonFinite axis existed still match their cells.
    """
    return (cell.get("workload"), cell.get("imbalance"),
            cell.get("corruption"), cell.get("corruption_mode", "spike"),
            cell.get("sparsity"), cell.get("method"), cell.get("variant"))


def format_key(key):
    workload, imbalance, corruption, mode, sparsity, method, variant = key
    name = f"{method}+{variant}" if variant else method
    return (f"{workload}/{imbalance}/corrupt={corruption:g}({mode})/"
            f"sparse={sparsity:g}/{name}")


def load_cells(path):
    """Returns (context, {key: cell}) for a rhchme_scenarios JSON."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    cells = {}
    for cell in doc.get("cells", []):
        cells[cell_key(cell)] = cell
    return doc.get("context", {}), cells


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default="build/QUALITY_scenarios.json",
                        help="JSON produced by the run under test")
    parser.add_argument("--baseline", default="QUALITY_scenarios.baseline.json",
                        help="committed reference JSON")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="absolute per-metric drop that fails "
                             "(default 0.05)")
    parser.add_argument("--allow-debug", action="store_true",
                        help="accept a debug-build current JSON (local "
                             "debugging only; CI must not pass this)")
    parser.add_argument("--allow-isa-mismatch", action="store_true",
                        help="compare runs even when current and baseline "
                             "dispatched different kernel tables")
    parser.add_argument("--require-isa-match", action="store_true",
                        help="treat a kernel-table mismatch as a hard "
                             "failure (exit 1) instead of skipping the "
                             "comparison; for legs that pin RHCHME_FORCE_ISA "
                             "and must never silently no-op")
    args = parser.parse_args()

    try:
        cur_ctx, current = load_cells(args.current)
    except (OSError, ValueError) as e:
        print(f"error: cannot read --current {args.current}: {e}")
        return 1
    try:
        base_ctx, baseline = load_cells(args.baseline)
    except (OSError, ValueError) as e:
        print(f"error: cannot read --baseline {args.baseline}: {e}")
        return 1

    build_type = str(cur_ctx.get("rhchme_build_type", "unknown")).lower()
    if build_type != "release" and not args.allow_debug:
        print(f"error: {args.current} was produced by a "
              f"{build_type!r} build; the committed baseline is Release "
              "and rounding differs across optimisation levels. Re-run "
              "rhchme_scenarios from a Release build (or pass "
              "--allow-debug for local experiments).")
        return 1

    # The binary dispatches its kernel table at runtime; the context
    # records which table the run actually used. Different tables round
    # differently, so a cross-table comparison measures the ISA, not a
    # quality regression — skip it (exit 0) unless the caller pinned the
    # table and wants a misconfigured leg to fail loudly.
    cur_isa = cur_ctx.get("rhchme_simd")
    base_isa = base_ctx.get("rhchme_simd")
    if (cur_isa is not None and base_isa is not None and cur_isa != base_isa
            and not args.allow_isa_mismatch):
        if args.require_isa_match:
            print(f"error: kernel-table mismatch: current dispatched "
                  f"{cur_isa!r} but the baseline was recorded with "
                  f"{base_isa!r}, and --require-isa-match is set. Pin the "
                  f"table with RHCHME_FORCE_ISA={base_isa} (or "
                  f"--force_isa {base_isa}) when producing the current "
                  "run, or regenerate the baseline.")
            return 1
        print(f"SKIP: current run dispatched kernel table {cur_isa!r} but "
              f"the baseline was recorded with {base_isa!r}; different "
              "kernels round differently, so the comparison would measure "
              "the ISA, not a quality regression. To reproduce the "
              f"baseline's table run rhchme_scenarios with --force_isa "
              f"{base_isa} (or RHCHME_FORCE_ISA={base_isa}); to compare "
              "across tables anyway pass --allow-isa-mismatch.")
        return 0

    shared = sorted(set(current) & set(baseline), key=str)
    only_current = sorted(set(current) - set(baseline), key=str)
    only_baseline = sorted(set(baseline) - set(current), key=str)

    if not shared:
        print("error: no grid cells shared between current and baseline; "
              "nothing to compare.")
        return 1

    regressions = []
    improvements = 0
    for key in shared:
        base, cur = baseline[key], current[key]
        for metric in METRICS:
            if metric not in base or metric not in cur:
                continue
            drop = float(base[metric]) - float(cur[metric])
            if drop > args.threshold:
                regressions.append((key, metric, float(base[metric]),
                                    float(cur[metric])))
            elif drop < -args.threshold:
                improvements += 1

    for key in only_current:
        print(f"note: {format_key(key)} has no baseline entry (new cell?)")
    for key in only_baseline:
        print(f"note: {format_key(key)} missing from current run "
              "(grid trimmed?)")

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) dropped more than "
              f"{args.threshold} against the baseline:")
        for key, metric, base, cur in regressions:
            print(f"  {format_key(key)}: {metric} "
                  f"{base:.4f} -> {cur:.4f} ({cur - base:+.4f})")
        return 1

    print(f"OK: {len(shared)} cells x {len(METRICS)} metrics within "
          f"{args.threshold} of baseline "
          f"({improvements} metric(s) improved beyond it).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
